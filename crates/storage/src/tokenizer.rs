//! Text tokenization for the keyword index.
//!
//! BANKS matches query keywords against "tokens appearing in any textual
//! attribute" (§2.3). We lowercase, split on non-alphanumeric boundaries,
//! and optionally drop stopwords. The same tokenizer is applied to queries,
//! attribute values and metadata names so that matching is symmetric
//! (e.g. the column name `AuthorName` yields tokens `author`, `name` and
//! `authorname`, letting the keyword "author" match metadata).

/// Tokenizer configuration.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    stopwords: Vec<String>,
    min_len: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer {
            stopwords: Vec::new(),
            min_len: 1,
        }
    }
}

impl Tokenizer {
    /// Tokenizer with no stopwords and no minimum length.
    pub fn new() -> Tokenizer {
        Tokenizer::default()
    }

    /// Use the given stopword list (compared lowercase).
    pub fn with_stopwords(mut self, words: &[&str]) -> Tokenizer {
        self.stopwords = words.iter().map(|w| w.to_lowercase()).collect();
        self
    }

    /// Drop tokens shorter than `n` characters.
    pub fn with_min_len(mut self, n: usize) -> Tokenizer {
        self.min_len = n;
        self
    }

    /// Whether a token survives filtering.
    fn keep(&self, token: &str) -> bool {
        token.chars().count() >= self.min_len && !self.stopwords.iter().any(|s| s == token)
    }

    /// Tokenize arbitrary text into lowercase alphanumeric tokens.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut current = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                current.extend(ch.to_lowercase());
            } else if !current.is_empty() {
                if self.keep(&current) {
                    out.push(std::mem::take(&mut current));
                } else {
                    current.clear();
                }
            }
        }
        if !current.is_empty() && self.keep(&current) {
            out.push(current);
        }
        out
    }

    /// Tokenize an identifier-style name (relation or column name),
    /// additionally splitting CamelCase words and including the whole
    /// lowercased identifier as a token.
    ///
    /// `"AuthorName"` → `["author", "name", "authorname"]`.
    pub fn tokenize_identifier(&self, name: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut current = String::new();
        let chars: Vec<char> = name.chars().collect();
        for (i, &ch) in chars.iter().enumerate() {
            if !ch.is_alphanumeric() {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
                continue;
            }
            // Split at lower→upper boundaries and upper→upper+lower ones
            // ("HTMLPage" → "html", "page").
            if ch.is_uppercase() && !current.is_empty() {
                let prev = chars[i - 1];
                let next_lower = chars.get(i + 1).is_some_and(|c| c.is_lowercase());
                if prev.is_lowercase() || prev.is_numeric() || (prev.is_uppercase() && next_lower) {
                    out.push(std::mem::take(&mut current));
                }
            }
            current.extend(ch.to_lowercase());
        }
        if !current.is_empty() {
            out.push(current);
        }
        let whole: String = name
            .chars()
            .filter(|c| c.is_alphanumeric())
            .flat_map(|c| c.to_lowercase())
            .collect();
        if !whole.is_empty() && !out.contains(&whole) {
            out.push(whole);
        }
        out.retain(|t| self.keep(t));
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokenization() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize("Mining Surprising Patterns"),
            vec!["mining", "surprising", "patterns"]
        );
        assert_eq!(
            t.tokenize("query-optimization, 1998!"),
            vec!["query", "optimization", "1998"]
        );
        assert!(t.tokenize("  \t ").is_empty());
    }

    #[test]
    fn stopwords_and_min_len() {
        let t = Tokenizer::new()
            .with_stopwords(&["the", "of"])
            .with_min_len(2);
        assert_eq!(
            t.tokenize("The anatomy of a search engine"),
            vec!["anatomy", "search", "engine"]
        );
    }

    #[test]
    fn identifier_splitting() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize_identifier("AuthorName"),
            vec!["author", "name", "authorname"]
        );
        assert_eq!(t.tokenize_identifier("Paper"), vec!["paper"]);
        assert_eq!(
            t.tokenize_identifier("paper_id"),
            vec!["paper", "id", "paperid"]
        );
    }

    #[test]
    fn identifier_acronym_boundary() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize_identifier("HTMLPage"),
            vec!["html", "page", "htmlpage"]
        );
    }

    #[test]
    fn unicode_case_folding() {
        let t = Tokenizer::new();
        assert_eq!(t.tokenize("Gödel Escher"), vec!["gödel", "escher"]);
    }

    #[test]
    fn numbers_are_tokens() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize("published in 1988"),
            vec!["published", "in", "1988"]
        );
    }
}
