//! Attribute values.
//!
//! BANKS treats the database as text-bearing tuples; only a handful of
//! scalar types are needed. [`Value`] is a small tagged union with a total
//! order (so values can be used as index keys and sort keys in browsing
//! views) and a stable hash.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single attribute value.
///
/// Floats are wrapped so that `Value` can implement `Eq`/`Ord`/`Hash`:
/// NaN is normalized to a single representation that sorts after every
/// other float, mirroring the "NULLs last, NaNs last" convention of most
/// SQL engines.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Sorts before everything else.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Convenience constructor for integer values.
    pub fn int(v: i64) -> Value {
        Value::Int(v)
    }

    /// Convenience constructor for float values.
    pub fn float(v: f64) -> Value {
        Value::Float(v)
    }

    /// True if this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The textual content of the value, if it is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content of the value, if it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float content, widening integers (useful for chart templates).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean content of the value, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A rank used to order values of *different* types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Text(_) => 3,
        }
    }

    /// Normalized float bits: all NaNs collapse to one pattern, and
    /// `-0.0`/`+0.0` collapse together, so `Eq`/`Hash` are consistent.
    fn float_key(v: f64) -> u64 {
        if v.is_nan() {
            u64::MAX
        } else if v == 0.0 {
            0f64.to_bits()
        } else {
            v.to_bits()
        }
    }

    /// Compare two numeric values (Int/Float), NaN greatest.
    fn numeric_cmp(a: f64, b: f64) -> Ordering {
        match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => Value::numeric_cmp(*a, *b),
            (Int(a), Float(b)) => Value::numeric_cmp(*a as f64, *b),
            (Float(a), Int(b)) => Value::numeric_cmp(*a, *b as f64),
            (Text(a), Text(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Ints and equal-valued floats must hash alike because they
            // compare equal (`Int(2) == Float(2.0)`).
            Value::Int(v) => {
                state.write_u8(2);
                state.write_u64(Value::float_key(*v as f64));
            }
            Value::Float(v) => {
                state.write_u8(2);
                state.write_u64(Value::float_key(*v));
            }
            Value::Text(s) => {
                state.write_u8(3);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::text(""));
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn nan_is_greatest_numeric_and_self_equal() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, Value::Float(f64::NAN));
        assert!(Value::Float(f64::MAX) < nan);
        assert!(nan < Value::text("a"));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
        assert_eq!(
            hash_of(&Value::Float(f64::NAN)),
            hash_of(&Value::Float(-f64::NAN))
        );
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::text("BANKS").to_string(), "BANKS");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::text("x").as_text(), Some("x"));
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::text("x").as_int(), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from("a"), Value::text("a"));
        assert_eq!(Value::from(1i64), Value::Int(1));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
