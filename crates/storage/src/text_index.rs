//! Inverted keyword index: token → RIDs of tuples containing the token in
//! some textual attribute.
//!
//! This plays the role of the paper's "disk resident indices on keywords"
//! that map keywords to RIDs (§3); ours lives in memory. The index also
//! records, per posting, *which* column matched — needed for the
//! `attribute:keyword` query extension of §2.3/§7.

use crate::catalog::Database;
use crate::tokenizer::Tokenizer;
use crate::tuple::Rid;
use banks_util::fxhash::FxHashMap;

/// One posting: a tuple and the column in which the token occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Posting {
    /// The matching tuple.
    pub rid: Rid,
    /// Column index within the tuple's relation.
    pub column: u32,
}

/// An inverted index over every text column of a database.
///
/// Two representations behind one API: the *eager* form (an Fx hash map
/// of owned posting lists — what [`TextIndex::build`] and live
/// ingestion maintain) and the *lazy* form (a
/// [`crate::postings::LazyTextIndex`] serving lookups straight off a
/// packed on-disk payload — what a paged bundle open hands over).
/// Mutation entry points ([`TextIndex::add_value`] /
/// [`TextIndex::remove_value`]) materialize a lazy index eagerly first,
/// so derived state stays identical whichever representation an index
/// started in.
#[derive(Debug, Clone, Default)]
pub struct TextIndex {
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    /// Fx-hashed: looked up per query term and rebuilt token-by-token
    /// on binary-snapshot restore.
    Eager(FxHashMap<String, Vec<Posting>>),
    /// Shared lazy view of a packed payload (Arc: clones share the
    /// posting cache).
    Lazy(std::sync::Arc<crate::postings::LazyTextIndex>),
}

impl Default for Repr {
    fn default() -> Self {
        Repr::Eager(FxHashMap::default())
    }
}

impl TextIndex {
    /// Build the index by scanning every relation of `db`.
    pub fn build(db: &Database, tokenizer: &Tokenizer) -> TextIndex {
        let mut index = TextIndex::default();
        for table in db.relations() {
            let text_cols: Vec<usize> = table
                .schema()
                .columns
                .iter()
                .enumerate()
                .filter(|(_, c)| matches!(c.ty, crate::schema::ColumnType::Text))
                .map(|(i, _)| i)
                .collect();
            if text_cols.is_empty() {
                continue;
            }
            for (rid, tuple) in table.scan() {
                for &col in &text_cols {
                    let Some(text) = tuple.values()[col].as_text() else {
                        continue;
                    };
                    for token in tokenizer.tokenize(text) {
                        index.insert(token, rid, col as u32);
                    }
                }
            }
        }
        index.finish();
        index
    }

    /// Wrap a lazily-decoded packed payload (see [`crate::postings`]).
    pub fn from_lazy(lazy: std::sync::Arc<crate::postings::LazyTextIndex>) -> TextIndex {
        TextIndex {
            repr: Repr::Lazy(lazy),
        }
    }

    /// Whether lookups are served from a lazy packed payload.
    pub fn is_lazy(&self) -> bool {
        matches!(self.repr, Repr::Lazy(_))
    }

    /// `(cached terms, total terms, cached posting bytes)` when lazy.
    pub fn lazy_cache_stats(&self) -> Option<(usize, usize, usize)> {
        match &self.repr {
            Repr::Lazy(l) => Some(l.cache_stats()),
            Repr::Eager(_) => None,
        }
    }

    /// The eager map, materializing a lazy payload first. Mutations have
    /// no error channel, so a source torn after open panics here — the
    /// same contract as a lazy lookup.
    fn eager_mut(&mut self) -> &mut FxHashMap<String, Vec<Posting>> {
        if let Repr::Lazy(lazy) = &self.repr {
            let entries = lazy
                .materialize()
                .expect("packed postings source torn after open");
            self.repr = Repr::Eager(entries.into_iter().collect());
        }
        match &mut self.repr {
            Repr::Eager(map) => map,
            Repr::Lazy(_) => unreachable!("materialized above"),
        }
    }

    fn insert(&mut self, token: String, rid: Rid, column: u32) {
        self.eager_mut()
            .entry(token)
            .or_default()
            .push(Posting { rid, column });
    }

    /// Sort and deduplicate posting lists (a token may occur several times
    /// in one attribute value; one posting per (rid, column) is enough).
    fn finish(&mut self) {
        for list in self.eager_mut().values_mut() {
            list.sort_by_key(|p| (p.rid, p.column));
            list.dedup();
            list.shrink_to_fit();
        }
    }

    /// Incrementally index one attribute value: add a posting for every
    /// distinct token of `text` under `(rid, column)`, preserving the
    /// sorted posting order [`TextIndex::build`] establishes. Already
    /// present postings are left alone, so re-adding is idempotent.
    pub fn add_value(&mut self, rid: Rid, column: u32, text: &str, tokenizer: &Tokenizer) {
        for token in Self::distinct_tokens_of(text, tokenizer) {
            let list = self.eager_mut().entry(token).or_default();
            let posting = Posting { rid, column };
            if let Err(pos) = list.binary_search_by_key(&(rid, column), |p| (p.rid, p.column)) {
                list.insert(pos, posting);
            }
        }
    }

    /// Incrementally un-index one attribute value: tombstone the posting
    /// `(rid, column)` under every distinct token of `text`. The posting
    /// is removed eagerly (the list is already sorted, so removal is a
    /// binary search + shift); token entries whose last posting dies are
    /// dropped entirely so lookups and memory accounting stay exact.
    pub fn remove_value(&mut self, rid: Rid, column: u32, text: &str, tokenizer: &Tokenizer) {
        for token in Self::distinct_tokens_of(text, tokenizer) {
            let map = self.eager_mut();
            let Some(list) = map.get_mut(&token) else {
                continue;
            };
            if let Ok(pos) = list.binary_search_by_key(&(rid, column), |p| (p.rid, p.column)) {
                list.remove(pos);
            }
            if list.is_empty() {
                map.remove(&token);
            }
        }
    }

    /// Tokenize `text` and deduplicate (a value's repeated token carries
    /// one posting — the invariant `finish` enforces for bulk builds).
    fn distinct_tokens_of(text: &str, tokenizer: &Tokenizer) -> Vec<String> {
        let mut tokens = tokenizer.tokenize(text);
        tokens.sort_unstable();
        tokens.dedup();
        tokens
    }

    /// Rebuild an index from deserialized posting lists — the binary
    /// snapshot load path. Lists serialized by a well-formed index are
    /// already sorted by `(rid, column)` and duplicate-free; that is
    /// verified with one linear scan, and only a list that fails it
    /// (hand-edited or foreign input) pays the sort + dedup
    /// normalization every other entry point maintains.
    pub fn from_postings<I>(entries: I) -> TextIndex
    where
        I: IntoIterator<Item = (String, Vec<Posting>)>,
    {
        TextIndex {
            repr: Repr::Eager(
                entries
                    .into_iter()
                    .filter(|(_, list)| !list.is_empty())
                    .map(|(token, mut list)| {
                        let sorted = list
                            .windows(2)
                            .all(|w| (w[0].rid, w[0].column) < (w[1].rid, w[1].column));
                        if !sorted {
                            list.sort_by_key(|p| (p.rid, p.column));
                            list.dedup();
                        }
                        (token, list)
                    })
                    .collect(),
            ),
        }
    }

    /// Postings for `token` (already lowercased by the tokenizer).
    pub fn lookup(&self, token: &str) -> &[Posting] {
        match &self.repr {
            Repr::Eager(map) => map.get(token).map(|v| v.as_slice()).unwrap_or(&[]),
            Repr::Lazy(lazy) => lazy.lookup(token),
        }
    }

    /// Distinct rids containing `token` in any column.
    pub fn lookup_rids(&self, token: &str) -> Vec<Rid> {
        let mut rids: Vec<Rid> = self.lookup(token).iter().map(|p| p.rid).collect();
        rids.dedup();
        rids
    }

    /// Rids containing `token` within a specific column of a specific
    /// relation (the `attribute:keyword` form).
    pub fn lookup_in_column(
        &self,
        token: &str,
        relation: crate::tuple::RelationId,
        column: u32,
    ) -> Vec<Rid> {
        self.lookup(token)
            .iter()
            .filter(|p| p.rid.relation == relation && p.column == column)
            .map(|p| p.rid)
            .collect()
    }

    /// Number of distinct tokens.
    pub fn distinct_tokens(&self) -> usize {
        match &self.repr {
            Repr::Eager(map) => map.len(),
            Repr::Lazy(lazy) => lazy.distinct_tokens(),
        }
    }

    /// Total number of postings across all tokens.
    pub fn posting_count(&self) -> usize {
        match &self.repr {
            Repr::Eager(map) => map.values().map(|v| v.len()).sum(),
            Repr::Lazy(lazy) => lazy.posting_count(),
        }
    }

    /// Iterate over all distinct tokens (used by approximate matching).
    pub fn tokens(&self) -> impl Iterator<Item = &str> + '_ {
        let iter: Box<dyn Iterator<Item = &str> + '_> = match &self.repr {
            Repr::Eager(map) => Box::new(map.keys().map(|s| s.as_str())),
            Repr::Lazy(lazy) => Box::new(lazy.tokens()),
        };
        iter
    }

    /// Approximate memory footprint in bytes (keys + posting arrays for
    /// the eager form; table + heap + cached lists for the lazy form),
    /// supporting the paper's §5.2 space accounting.
    pub fn memory_bytes(&self) -> usize {
        match &self.repr {
            Repr::Eager(map) => {
                let mut bytes = 0usize;
                for (k, v) in map {
                    bytes += k.len() + std::mem::size_of::<String>();
                    bytes += v.capacity() * std::mem::size_of::<Posting>();
                    bytes += std::mem::size_of::<Vec<Posting>>();
                }
                bytes
            }
            Repr::Lazy(lazy) => lazy.memory_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, RelationSchema};
    use crate::value::Value;

    fn db_with_papers() -> (Database, Vec<Rid>) {
        let mut db = Database::new("t");
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .column("PaperName", ColumnType::Text)
                .column("Year", ColumnType::Int)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let rids = vec![
            db.insert(
                "Paper",
                vec![
                    Value::text("p1"),
                    Value::text("Temporal Mining of Patterns"),
                    Value::Int(1998),
                ],
            )
            .unwrap(),
            db.insert(
                "Paper",
                vec![
                    Value::text("p2"),
                    Value::text("Query Optimization Survey"),
                    Value::Int(1996),
                ],
            )
            .unwrap(),
            db.insert(
                "Paper",
                vec![
                    Value::text("p3"),
                    Value::text("Mining mining MINING"),
                    Value::Int(2000),
                ],
            )
            .unwrap(),
        ];
        (db, rids)
    }

    #[test]
    fn lookup_finds_matching_tuples() {
        let (db, rids) = db_with_papers();
        let idx = TextIndex::build(&db, &Tokenizer::new());
        assert_eq!(idx.lookup_rids("mining"), vec![rids[0], rids[2]]);
        assert_eq!(idx.lookup_rids("optimization"), vec![rids[1]]);
        assert!(idx.lookup_rids("nonexistent").is_empty());
    }

    #[test]
    fn repeated_tokens_deduplicate() {
        let (db, rids) = db_with_papers();
        let idx = TextIndex::build(&db, &Tokenizer::new());
        // "Mining mining MINING" contributes a single posting.
        let postings = idx.lookup("mining");
        let for_p3: Vec<_> = postings.iter().filter(|p| p.rid == rids[2]).collect();
        assert_eq!(for_p3.len(), 1);
    }

    #[test]
    fn pk_text_columns_are_indexed_too() {
        let (db, rids) = db_with_papers();
        let idx = TextIndex::build(&db, &Tokenizer::new());
        assert_eq!(idx.lookup_rids("p1"), vec![rids[0]]);
    }

    #[test]
    fn column_restricted_lookup() {
        let (db, rids) = db_with_papers();
        let idx = TextIndex::build(&db, &Tokenizer::new());
        let rel = db.relation_id("Paper").unwrap();
        // "mining" appears in PaperName (column 1), not PaperId (column 0).
        assert_eq!(
            idx.lookup_in_column("mining", rel, 1),
            vec![rids[0], rids[2]]
        );
        assert!(idx.lookup_in_column("mining", rel, 0).is_empty());
    }

    #[test]
    fn stats_and_memory_reporting() {
        let (db, _) = db_with_papers();
        let idx = TextIndex::build(&db, &Tokenizer::new());
        assert!(idx.distinct_tokens() > 5);
        assert!(idx.posting_count() >= idx.distinct_tokens());
        assert!(idx.memory_bytes() > 0);
        assert!(idx.tokens().any(|t| t == "temporal"));
    }

    #[test]
    fn incremental_add_remove_matches_bulk_build() {
        let tokenizer = Tokenizer::new();
        let (mut db, rids) = db_with_papers();
        let mut idx = TextIndex::build(&db, &tokenizer);

        // Add a fourth paper incrementally; the index must equal a bulk
        // rebuild over the mutated database.
        let r4 = db
            .insert(
                "Paper",
                vec![
                    Value::text("p4"),
                    Value::text("Mining the Query Stream"),
                    Value::Int(2002),
                ],
            )
            .unwrap();
        idx.add_value(r4, 0, "p4", &tokenizer);
        idx.add_value(r4, 1, "Mining the Query Stream", &tokenizer);
        let rebuilt = TextIndex::build(&db, &tokenizer);
        for token in rebuilt.tokens() {
            assert_eq!(idx.lookup(token), rebuilt.lookup(token), "token {token}");
        }
        assert_eq!(idx.distinct_tokens(), rebuilt.distinct_tokens());
        assert_eq!(idx.posting_count(), rebuilt.posting_count());
        assert_eq!(idx.lookup_rids("mining"), vec![rids[0], rids[2], r4]);

        // Re-adding is idempotent.
        idx.add_value(r4, 1, "Mining the Query Stream", &tokenizer);
        assert_eq!(idx.posting_count(), rebuilt.posting_count());

        // Remove it again: back to the original index, and tokens whose
        // last posting died ("stream") disappear entirely.
        idx.remove_value(r4, 0, "p4", &tokenizer);
        idx.remove_value(r4, 1, "Mining the Query Stream", &tokenizer);
        db.delete(r4).unwrap();
        let original = TextIndex::build(&db, &tokenizer);
        assert_eq!(idx.distinct_tokens(), original.distinct_tokens());
        assert_eq!(idx.posting_count(), original.posting_count());
        assert!(idx.lookup("stream").is_empty());
        // Removing something never indexed is a no-op.
        idx.remove_value(r4, 1, "totally absent tokens", &tokenizer);
        assert_eq!(idx.posting_count(), original.posting_count());
    }

    #[test]
    fn int_columns_not_text_indexed() {
        let (db, _) = db_with_papers();
        let idx = TextIndex::build(&db, &Tokenizer::new());
        // Years live in an Int column; the text index does not cover them.
        assert!(idx.lookup_rids("1998").is_empty());
    }
}
