//! Metadata matching: keywords that hit relation or column *names*.
//!
//! §2.3 of the paper: "A node is relevant to a search term if it contains
//! the search term as part of an attribute value or metadata (such as
//! column, table or view names). E.g., all tuples belonging to a relation
//! named AUTHOR would be regarded as relevant to the keyword 'author'."

use crate::catalog::Database;
use crate::tokenizer::Tokenizer;
use crate::tuple::RelationId;
use std::collections::HashMap;

/// What a metadata token refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetadataTarget {
    /// The token matches a relation name: every tuple of the relation is
    /// relevant.
    Relation(RelationId),
    /// The token matches a column name: every tuple with a non-NULL value
    /// in that column is relevant.
    Column(RelationId, u32),
}

/// Index of schema-name tokens.
#[derive(Debug, Clone, Default)]
pub struct MetadataIndex {
    targets: HashMap<String, Vec<MetadataTarget>>,
}

impl MetadataIndex {
    /// Build the metadata index from a database's schemas.
    pub fn build(db: &Database, tokenizer: &Tokenizer) -> MetadataIndex {
        let mut index = MetadataIndex::default();
        for table in db.relations() {
            let rel = table.id();
            for token in tokenizer.tokenize_identifier(&table.schema().name) {
                index
                    .targets
                    .entry(token)
                    .or_default()
                    .push(MetadataTarget::Relation(rel));
            }
            for (col, def) in table.schema().columns.iter().enumerate() {
                for token in tokenizer.tokenize_identifier(&def.name) {
                    index
                        .targets
                        .entry(token)
                        .or_default()
                        .push(MetadataTarget::Column(rel, col as u32));
                }
            }
        }
        for v in index.targets.values_mut() {
            v.sort_by_key(|t| match *t {
                MetadataTarget::Relation(r) => (0u8, r, 0u32),
                MetadataTarget::Column(r, c) => (1u8, r, c),
            });
            v.dedup();
        }
        index
    }

    /// Metadata targets matching `token`.
    pub fn lookup(&self, token: &str) -> &[MetadataTarget] {
        self.targets.get(token).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Resolve a (possibly qualified) attribute name to `(relation, column)`
    /// pairs — used by `attribute:keyword` queries. The attribute may be
    /// `"relation.column"` or a bare column name matched across relations.
    pub fn resolve_attribute(&self, db: &Database, attribute: &str) -> Vec<(RelationId, u32)> {
        if let Some((rel_name, col_name)) = attribute.split_once('.') {
            if let Ok(table) = db.relation(rel_name) {
                if let Some(col) = table.schema().column_index(col_name) {
                    return vec![(table.id(), col as u32)];
                }
            }
            return Vec::new();
        }
        let mut out = Vec::new();
        for table in db.relations() {
            for (col, def) in table.schema().columns.iter().enumerate() {
                if def.name.eq_ignore_ascii_case(attribute) {
                    out.push((table.id(), col as u32));
                }
            }
        }
        out
    }

    /// Number of distinct metadata tokens.
    pub fn distinct_tokens(&self) -> usize {
        self.targets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, RelationSchema};

    fn db() -> Database {
        let mut db = Database::new("t");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("AuthorId", ColumnType::Text)
                .column("AuthorName", ColumnType::Text)
                .primary_key(&["AuthorId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .column("PaperName", ColumnType::Text)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn relation_name_token_maps_to_relation() {
        let db = db();
        let idx = MetadataIndex::build(&db, &Tokenizer::new());
        let author_rel = db.relation_id("Author").unwrap();
        let targets = idx.lookup("author");
        assert!(targets.contains(&MetadataTarget::Relation(author_rel)));
    }

    #[test]
    fn column_name_tokens_map_to_columns() {
        let db = db();
        let idx = MetadataIndex::build(&db, &Tokenizer::new());
        let paper_rel = db.relation_id("Paper").unwrap();
        // "name" appears in AuthorName and PaperName.
        let targets = idx.lookup("name");
        assert!(targets.contains(&MetadataTarget::Column(paper_rel, 1)));
        assert_eq!(
            targets
                .iter()
                .filter(|t| matches!(t, MetadataTarget::Column(..)))
                .count(),
            2
        );
    }

    #[test]
    fn shared_token_hits_relation_and_columns() {
        let db = db();
        let idx = MetadataIndex::build(&db, &Tokenizer::new());
        // "paper" matches the Paper relation and the PaperId/PaperName columns
        // of Paper (CamelCase split).
        let targets = idx.lookup("paper");
        assert!(targets
            .iter()
            .any(|t| matches!(t, MetadataTarget::Relation(_))));
        assert!(targets
            .iter()
            .any(|t| matches!(t, MetadataTarget::Column(..))));
    }

    #[test]
    fn resolve_attribute_qualified_and_bare() {
        let db = db();
        let idx = MetadataIndex::build(&db, &Tokenizer::new());
        let author_rel = db.relation_id("Author").unwrap();
        assert_eq!(
            idx.resolve_attribute(&db, "Author.AuthorName"),
            vec![(author_rel, 1)]
        );
        assert_eq!(
            idx.resolve_attribute(&db, "AuthorName"),
            vec![(author_rel, 1)]
        );
        assert!(idx.resolve_attribute(&db, "Author.Nope").is_empty());
        assert!(idx.resolve_attribute(&db, "Nope.AuthorName").is_empty());
    }

    #[test]
    fn unknown_token_empty() {
        let db = db();
        let idx = MetadataIndex::build(&db, &Tokenizer::new());
        assert!(idx.lookup("zzz").is_empty());
        assert!(idx.distinct_tokens() > 0);
    }
}
