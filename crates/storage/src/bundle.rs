//! Whole-database persistence: a *bundle* is a directory with a plain-text
//! schema file plus one CSV per relation.
//!
//! ```text
//! mydb/
//!   schema.banks      # relations, columns, keys, foreign keys
//!   Author.csv
//!   Paper.csv
//!   …
//! ```
//!
//! The schema format is line-based and diff-friendly:
//!
//! ```text
//! database dblp
//! relation Author
//! column AuthorId text
//! column AuthorName text
//! primary_key AuthorId
//! end
//! relation Writes
//! column AuthorId text
//! column PaperId text
//! primary_key AuthorId PaperId
//! foreign_key AuthorId -> Author
//! foreign_key PaperId -> Paper similarity 2
//! end
//! ```

use crate::catalog::Database;
use crate::csv::{load_csv_into, table_to_csv};
use crate::error::{StorageError, StorageResult};
use crate::schema::{ColumnType, RelationSchema};
use std::path::Path;

/// Serialize every relation schema to the `schema.banks` text format.
pub fn schema_to_text(db: &Database) -> String {
    let mut out = format!("database {}\n", db.name());
    for table in db.relations() {
        let schema = table.schema();
        out.push_str(&format!("relation {}\n", schema.name));
        for col in &schema.columns {
            if col.nullable {
                out.push_str(&format!("column {} {} nullable\n", col.name, col.ty.name()));
            } else {
                out.push_str(&format!("column {} {}\n", col.name, col.ty.name()));
            }
        }
        if schema.has_primary_key() {
            out.push_str(&format!(
                "primary_key {}\n",
                schema.primary_key_names().join(" ")
            ));
        }
        for fk in &schema.foreign_keys {
            let cols: Vec<&str> = fk
                .columns
                .iter()
                .map(|&c| schema.columns[c].name.as_str())
                .collect();
            out.push_str(&format!(
                "foreign_key {} -> {}",
                cols.join(" "),
                fk.ref_relation
            ));
            if let Some(s) = fk.similarity {
                out.push_str(&format!(" similarity {s}"));
            }
            if fk.nullable {
                out.push_str(" nullable");
            }
            out.push('\n');
        }
        out.push_str("end\n");
    }
    out
}

/// Parse a `schema.banks` text back into an empty database with all
/// relations declared (in file order, so foreign keys resolve).
pub fn schema_from_text(text: &str) -> StorageResult<Database> {
    let mut db: Option<Database> = None;
    let mut builder: Option<RelationSchema> = None;

    fn err(line_no: usize, message: impl Into<String>) -> StorageError {
        StorageError::Csv {
            line: line_no,
            message: message.into(),
        }
    }

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap_or("");
        match keyword {
            "database" => {
                let name = parts.next().ok_or_else(|| err(line_no, "missing name"))?;
                db = Some(Database::new(name));
            }
            "relation" => {
                if builder.is_some() {
                    return Err(err(line_no, "nested relation (missing `end`?)"));
                }
                let name = parts.next().ok_or_else(|| err(line_no, "missing name"))?;
                builder = Some(RelationSchema {
                    name: name.to_string(),
                    columns: Vec::new(),
                    primary_key: Vec::new(),
                    foreign_keys: Vec::new(),
                });
            }
            "column" => {
                let schema = builder
                    .as_mut()
                    .ok_or_else(|| err(line_no, "column outside relation"))?;
                let name = parts.next().ok_or_else(|| err(line_no, "missing name"))?;
                let ty = parts
                    .next()
                    .and_then(ColumnType::parse)
                    .ok_or_else(|| err(line_no, "missing/unknown type"))?;
                let nullable = match parts.next() {
                    None => false,
                    Some("nullable") => true,
                    Some(other) => return Err(err(line_no, format!("unexpected `{other}`"))),
                };
                schema.columns.push(crate::schema::ColumnDef {
                    name: name.to_string(),
                    ty,
                    nullable,
                });
            }
            "primary_key" => {
                let schema = builder
                    .as_mut()
                    .ok_or_else(|| err(line_no, "primary_key outside relation"))?;
                for name in parts {
                    let idx = schema
                        .column_index(name)
                        .ok_or_else(|| err(line_no, format!("unknown column `{name}`")))?;
                    schema.primary_key.push(idx);
                }
            }
            "foreign_key" => {
                let schema = builder
                    .as_mut()
                    .ok_or_else(|| err(line_no, "foreign_key outside relation"))?;
                let tokens: Vec<&str> = parts.collect();
                let arrow = tokens
                    .iter()
                    .position(|&t| t == "->")
                    .ok_or_else(|| err(line_no, "missing `->`"))?;
                if arrow == 0 || arrow + 1 >= tokens.len() {
                    return Err(err(line_no, "malformed foreign_key"));
                }
                let mut columns = Vec::with_capacity(arrow);
                for name in &tokens[..arrow] {
                    let idx = schema
                        .column_index(name)
                        .ok_or_else(|| err(line_no, format!("unknown column `{name}`")))?;
                    columns.push(idx);
                }
                let ref_relation = tokens[arrow + 1].to_string();
                let mut similarity = None;
                let mut nullable = false;
                let mut rest = tokens[arrow + 2..].iter();
                while let Some(&token) = rest.next() {
                    match token {
                        "similarity" => {
                            let v = rest
                                .next()
                                .and_then(|s| s.parse::<f64>().ok())
                                .ok_or_else(|| err(line_no, "bad similarity"))?;
                            similarity = Some(v);
                        }
                        "nullable" => nullable = true,
                        other => return Err(err(line_no, format!("unexpected `{other}`"))),
                    }
                }
                schema.foreign_keys.push(crate::schema::ForeignKey {
                    columns,
                    ref_relation,
                    similarity,
                    nullable,
                });
            }
            "end" => {
                let schema = builder
                    .take()
                    .ok_or_else(|| err(line_no, "`end` outside relation"))?;
                db.as_mut()
                    .ok_or_else(|| err(line_no, "relation before `database`"))?
                    .create_relation(schema)?;
            }
            other => return Err(err(line_no, format!("unknown keyword `{other}`"))),
        }
    }
    if builder.is_some() {
        return Err(err(text.lines().count(), "unterminated relation"));
    }
    db.ok_or_else(|| err(1, "no `database` line"))
}

/// Write a full bundle (schema + per-relation CSVs) to `dir`, creating it
/// if needed.
pub fn save_bundle(db: &Database, dir: &Path) -> StorageResult<()> {
    let io = |e: std::io::Error| StorageError::Csv {
        line: 0,
        message: format!("io error: {e}"),
    };
    std::fs::create_dir_all(dir).map_err(io)?;
    std::fs::write(dir.join("schema.banks"), schema_to_text(db)).map_err(io)?;
    for table in db.relations() {
        let path = dir.join(format!("{}.csv", table.schema().name));
        std::fs::write(path, table_to_csv(table)).map_err(io)?;
    }
    Ok(())
}

/// Load a full bundle from `dir`. Relations load in schema-file order, so
/// foreign keys resolve as long as the bundle was written by
/// [`save_bundle`] (or follows the same ordering rule).
pub fn load_bundle(dir: &Path) -> StorageResult<Database> {
    let io = |e: std::io::Error| StorageError::Csv {
        line: 0,
        message: format!("io error: {e}"),
    };
    let schema_text = std::fs::read_to_string(dir.join("schema.banks")).map_err(io)?;
    let mut db = schema_from_text(&schema_text)?;
    let names: Vec<String> = db.relations().map(|t| t.schema().name.clone()).collect();
    for name in names {
        let path = dir.join(format!("{name}.csv"));
        let csv = std::fs::read_to_string(&path).map_err(io)?;
        load_csv_into(&mut db, &name, &csv)?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample_db() -> Database {
        let mut db = Database::new("bundle-test");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("Id", ColumnType::Text)
                .nullable_column("Name", ColumnType::Text)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("Id", ColumnType::Text)
                .column("Year", ColumnType::Int)
                .nullable_column("Rating", ColumnType::Float)
                .column("Published", ColumnType::Bool)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("A", ColumnType::Text)
                .column("P", ColumnType::Text)
                .primary_key(&["A", "P"])
                .foreign_key(&["A"], "Author")
                .foreign_key_with_similarity(&["P"], "Paper", 2.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert(
            "Author",
            vec![Value::text("a1"), Value::text("Grace, \"the\" Author")],
        )
        .unwrap();
        db.insert("Author", vec![Value::text("a2"), Value::Null])
            .unwrap();
        db.insert(
            "Paper",
            vec![
                Value::text("p1"),
                Value::Int(1998),
                Value::Float(4.5),
                Value::Bool(true),
            ],
        )
        .unwrap();
        db.insert("Writes", vec![Value::text("a1"), Value::text("p1")])
            .unwrap();
        db
    }

    #[test]
    fn schema_text_roundtrip() {
        let db = sample_db();
        let text = schema_to_text(&db);
        let parsed = schema_from_text(&text).unwrap();
        assert_eq!(parsed.name(), "bundle-test");
        assert_eq!(parsed.relation_count(), 3);
        for (a, b) in db.relations().zip(parsed.relations()) {
            assert_eq!(
                a.schema(),
                b.schema(),
                "schema drift for {}",
                a.schema().name
            );
        }
    }

    #[test]
    fn bundle_roundtrip_on_disk() {
        let db = sample_db();
        let dir = std::env::temp_dir().join(format!("banks_bundle_{}", std::process::id()));
        save_bundle(&db, &dir).unwrap();
        let loaded = load_bundle(&dir).unwrap();
        assert_eq!(loaded.total_tuples(), db.total_tuples());
        assert_eq!(loaded.link_count(), db.link_count());
        // Adversarial text survived.
        let rid = loaded
            .relation("Author")
            .unwrap()
            .lookup_pk(&[Value::text("a1")])
            .unwrap();
        assert_eq!(
            loaded.tuple(rid).unwrap().get(1),
            Some(&Value::text("Grace, \"the\" Author"))
        );
        // FK similarity survived.
        let writes = loaded.relation("Writes").unwrap().schema().clone();
        assert_eq!(writes.foreign_keys[1].similarity, Some(2.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        for (text, needle) in [
            ("relation R\ncolumn A text\nend\n", "before `database`"),
            ("database x\ncolumn A text\n", "outside relation"),
            ("database x\nrelation R\ncolumn A text\n", "unterminated"),
            (
                "database x\nrelation R\ncolumn A varchar\nend\n",
                "unknown type",
            ),
            (
                "database x\nrelation R\ncolumn A text\nprimary_key B\nend\n",
                "unknown column",
            ),
            (
                "database x\nrelation R\ncolumn A text\nforeign_key A Author\nend\n",
                "->",
            ),
            ("database x\nfrobnicate\n", "unknown keyword"),
        ] {
            let result = schema_from_text(text);
            let err = result.expect_err(text).to_string();
            assert!(err.contains(needle), "`{text}` gave `{err}`");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a bundle\ndatabase x\n\nrelation R\ncolumn A text\nprimary_key A\nend\n";
        let db = schema_from_text(text).unwrap();
        assert_eq!(db.relation_count(), 1);
    }

    #[test]
    fn missing_bundle_dir_errors() {
        let missing = std::path::Path::new("/nonexistent/banks/bundle");
        assert!(load_bundle(missing).is_err());
    }
}
