//! # banks-storage
//!
//! An in-memory relational storage engine: the substrate underneath the
//! BANKS keyword-search system (Bhalotia et al., ICDE 2002).
//!
//! The original BANKS prototype ran on IBM Universal Database over JDBC, but
//! only ever needed a small slice of relational functionality:
//!
//! * typed tuples with stable row identifiers ([`Rid`]),
//! * primary keys for point lookups,
//! * foreign keys — the edges of the BANKS data graph — with forward
//!   resolution ([`Database::resolve_fk`]) and backward resolution
//!   ([`Database::referencing`]),
//! * an inverted keyword index over textual attributes
//!   ([`text_index::TextIndex`]),
//! * metadata matching (relation and column names, [`metadata`]),
//! * and enough scan/select/project machinery to drive the browsing
//!   interface of the paper's §4.
//!
//! This crate provides exactly that, with no external dependencies. It is
//! deliberately simple: tables are vectors of tuples, indexes are hash maps.
//! All BANKS search work happens on the in-memory graph built from this
//! catalog (see `banks-graph` / `banks-core`), which mirrors the paper's
//! assumption that "the graph fits in memory" while keyword→RID indexes may
//! be disk resident (ours are in memory too).
//!
//! ## Quick example
//!
//! ```
//! use banks_storage::{Database, RelationSchema, ColumnType, Value};
//!
//! let mut db = Database::new("bib");
//! let author = RelationSchema::builder("Author")
//!     .column("AuthorId", ColumnType::Text)
//!     .column("AuthorName", ColumnType::Text)
//!     .primary_key(&["AuthorId"])
//!     .build()
//!     .unwrap();
//! db.create_relation(author).unwrap();
//! let rid = db
//!     .insert("Author", vec![Value::text("SoumenC"), Value::text("Soumen Chakrabarti")])
//!     .unwrap();
//! assert_eq!(db.tuple(rid).unwrap().values()[1], Value::text("Soumen Chakrabarti"));
//! ```

pub mod binary;
pub mod blocks;
pub mod bundle;
pub mod catalog;
pub mod csv;
pub mod error;
pub mod metadata;
pub mod postings;
pub mod predicate;
pub mod schema;
pub mod stats;
pub mod table;
pub mod text_index;
pub mod tokenizer;
pub mod tuple;
pub mod value;

pub use blocks::{
    DataLayout, TupleBlock, TupleStore, TupleStoreStats, BLOCK_SPAN, DATA_V3_MAGIC,
};
pub use catalog::{BackRef, Database};
pub use error::{StorageError, StorageResult};
pub use metadata::{MetadataIndex, MetadataTarget};
pub use postings::{LazyTextIndex, PostingSource};
pub use predicate::Predicate;
pub use schema::{ColumnDef, ColumnType, ForeignKey, RelationSchema, SchemaBuilder};
pub use table::Table;
pub use text_index::{Posting, TextIndex};
pub use tokenizer::Tokenizer;
pub use tuple::{RelationId, Rid, Tuple};
pub use value::Value;
