//! Tuples and row identifiers.
//!
//! BANKS keeps only RIDs in its in-memory graph (§3: "the in-memory node
//! representation need not store any attribute of the corresponding tuple
//! other than the RID"). [`Rid`] is therefore a compact 8-byte identifier:
//! a relation id plus a row slot, stable across deletions.

use crate::value::Value;
use std::fmt;

/// Identifier of a relation within a [`crate::Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub u32);

impl RelationId {
    /// The integer index of this relation in the catalog.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A stable row identifier: relation + slot within the relation's
/// tuple vector. Slots are never reused, so a `Rid` either resolves to the
/// same tuple forever or (after deletion) to nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// The owning relation.
    pub relation: RelationId,
    /// Slot index within the relation.
    pub slot: u32,
}

impl Rid {
    /// Construct a rid from raw parts.
    pub fn new(relation: RelationId, slot: u32) -> Rid {
        Rid { relation, slot }
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.relation, self.slot)
    }
}

/// A stored tuple: a boxed slice of values, matching its relation's arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    values: Box<[Value]>,
}

impl Tuple {
    /// Create a tuple from values. Arity/type checks happen at table level.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple {
            values: values.into_boxed_slice(),
        }
    }

    /// Borrow the attribute values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value of the column at `idx`.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Mutable access for in-place updates (used by `Table::update`).
    pub(crate) fn get_mut(&mut self, idx: usize) -> Option<&mut Value> {
        self.values.get_mut(idx)
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rid_display() {
        let rid = Rid::new(RelationId(2), 17);
        assert_eq!(rid.to_string(), "R2:17");
    }

    #[test]
    fn rid_ordering_groups_by_relation() {
        let a = Rid::new(RelationId(0), 99);
        let b = Rid::new(RelationId(1), 0);
        assert!(a < b);
    }

    #[test]
    fn tuple_accessors() {
        let t = Tuple::new(vec![Value::int(1), Value::text("x")]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(1), Some(&Value::text("x")));
        assert_eq!(t.get(2), None);
        assert_eq!(t.values().len(), 2);
    }
}
