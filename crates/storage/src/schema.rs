//! Relation schemas: columns, primary keys and foreign keys.
//!
//! Foreign keys are the heart of BANKS: every foreign-key–primary-key link
//! becomes a pair of directed edges in the data graph (§2 of the paper).
//! Each [`ForeignKey`] therefore carries an optional *similarity* override —
//! the `s(R1, R2)` of the paper's §2.2 — which the graph builder in
//! `banks-core` uses as the forward edge weight (default 1.0).

use crate::error::{StorageError, StorageResult};
use crate::value::Value;

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

impl ColumnType {
    /// Whether `value` conforms to this column type (NULL always conforms;
    /// nullability is checked separately).
    pub fn accepts(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_))
                | (ColumnType::Text, Value::Text(_))
                | (ColumnType::Bool, Value::Bool(_))
        )
    }

    /// Name used in error messages and CSV headers.
    pub fn name(&self) -> &'static str {
        match self {
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Text => "text",
            ColumnType::Bool => "bool",
        }
    }

    /// Parse a type name as produced by [`ColumnType::name`].
    pub fn parse(s: &str) -> Option<ColumnType> {
        match s {
            "int" => Some(ColumnType::Int),
            "float" => Some(ColumnType::Float),
            "text" => Some(ColumnType::Text),
            "bool" => Some(ColumnType::Bool),
            _ => None,
        }
    }
}

/// A single column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (unique within the relation).
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

/// A foreign-key declaration: `columns` of this relation reference
/// `ref_columns` (the primary key) of `ref_relation`.
#[derive(Debug, Clone, PartialEq)]
pub struct ForeignKey {
    /// Column indices (into the owning relation) forming the key.
    pub columns: Vec<usize>,
    /// Name of the referenced relation.
    pub ref_relation: String,
    /// Similarity `s(R1,R2)` of this link type (paper §2.2); used as the
    /// forward edge weight in the BANKS graph. `None` means the default 1.0.
    pub similarity: Option<f64>,
    /// Whether a NULL key is allowed (a NULL foreign key simply produces no
    /// graph edge, like an absent hyperlink).
    pub nullable: bool,
}

/// Schema of one relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationSchema {
    /// Relation name (unique within the database).
    pub name: String,
    /// Ordered column declarations.
    pub columns: Vec<ColumnDef>,
    /// Column indices forming the primary key (may be empty for link
    /// relations like `Writes` whose identity is their whole tuple).
    pub primary_key: Vec<usize>,
    /// Foreign keys declared on this relation.
    pub foreign_keys: Vec<ForeignKey>,
}

impl RelationSchema {
    /// Start building a schema with the given relation name.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder::new(name)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the column with the given name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Resolve a column name to its index, with a descriptive error.
    pub fn require_column(&self, name: &str) -> StorageResult<usize> {
        self.column_index(name)
            .ok_or_else(|| StorageError::UnknownColumn {
                relation: self.name.clone(),
                column: name.to_string(),
            })
    }

    /// Whether this relation declares a primary key.
    pub fn has_primary_key(&self) -> bool {
        !self.primary_key.is_empty()
    }

    /// Extract the primary-key values from a full tuple of values.
    pub fn key_of<'a>(&self, values: &'a [Value]) -> Vec<&'a Value> {
        self.primary_key.iter().map(|&i| &values[i]).collect()
    }

    /// Names of the primary-key columns, in key order.
    pub fn primary_key_names(&self) -> Vec<&str> {
        self.primary_key
            .iter()
            .map(|&i| self.columns[i].name.as_str())
            .collect()
    }

    /// Validate internal consistency (column name uniqueness, index bounds).
    pub fn validate(&self) -> StorageResult<()> {
        if self.name.is_empty() {
            return Err(StorageError::InvalidSchema(
                "relation name must be non-empty".into(),
            ));
        }
        for (i, c) in self.columns.iter().enumerate() {
            if c.name.is_empty() {
                return Err(StorageError::InvalidSchema(format!(
                    "column {i} of `{}` has an empty name",
                    self.name
                )));
            }
            if self.columns[..i].iter().any(|p| p.name == c.name) {
                return Err(StorageError::InvalidSchema(format!(
                    "duplicate column `{}` in `{}`",
                    c.name, self.name
                )));
            }
        }
        for &k in &self.primary_key {
            if k >= self.columns.len() {
                return Err(StorageError::InvalidSchema(format!(
                    "primary key column index {k} out of range in `{}`",
                    self.name
                )));
            }
        }
        for fk in &self.foreign_keys {
            if fk.columns.is_empty() {
                return Err(StorageError::InvalidSchema(format!(
                    "foreign key in `{}` has no columns",
                    self.name
                )));
            }
            for &k in &fk.columns {
                if k >= self.columns.len() {
                    return Err(StorageError::InvalidSchema(format!(
                        "foreign key column index {k} out of range in `{}`",
                        self.name
                    )));
                }
            }
            if let Some(s) = fk.similarity {
                if !(s.is_finite() && s > 0.0) {
                    return Err(StorageError::InvalidSchema(format!(
                        "foreign key similarity in `{}` must be finite and positive",
                        self.name
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Fluent builder for [`RelationSchema`].
///
/// ```
/// use banks_storage::{RelationSchema, ColumnType};
/// let writes = RelationSchema::builder("Writes")
///     .column("AuthorId", ColumnType::Text)
///     .column("PaperId", ColumnType::Text)
///     .foreign_key(&["AuthorId"], "Author")
///     .foreign_key(&["PaperId"], "Paper")
///     .build()
///     .unwrap();
/// assert_eq!(writes.foreign_keys.len(), 2);
/// ```
#[derive(Debug)]
pub struct SchemaBuilder {
    name: String,
    columns: Vec<ColumnDef>,
    primary_key: Vec<String>,
    foreign_keys: Vec<(Vec<String>, String, Option<f64>, bool)>,
}

impl SchemaBuilder {
    fn new(name: impl Into<String>) -> Self {
        SchemaBuilder {
            name: name.into(),
            columns: Vec::new(),
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Add a non-nullable column.
    pub fn column(mut self, name: impl Into<String>, ty: ColumnType) -> Self {
        self.columns.push(ColumnDef {
            name: name.into(),
            ty,
            nullable: false,
        });
        self
    }

    /// Add a nullable column.
    pub fn nullable_column(mut self, name: impl Into<String>, ty: ColumnType) -> Self {
        self.columns.push(ColumnDef {
            name: name.into(),
            ty,
            nullable: true,
        });
        self
    }

    /// Declare the primary key by column names.
    pub fn primary_key(mut self, cols: &[&str]) -> Self {
        self.primary_key = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Declare a foreign key (default similarity, non-nullable).
    pub fn foreign_key(mut self, cols: &[&str], ref_relation: impl Into<String>) -> Self {
        self.foreign_keys.push((
            cols.iter().map(|s| s.to_string()).collect(),
            ref_relation.into(),
            None,
            false,
        ));
        self
    }

    /// Declare a foreign key with an explicit similarity `s(R1,R2)`.
    ///
    /// Per the paper, smaller values mean greater proximity: e.g. the
    /// Paper→Cites link may be given a higher weight (weaker link) than
    /// Paper→Writes.
    pub fn foreign_key_with_similarity(
        mut self,
        cols: &[&str],
        ref_relation: impl Into<String>,
        similarity: f64,
    ) -> Self {
        self.foreign_keys.push((
            cols.iter().map(|s| s.to_string()).collect(),
            ref_relation.into(),
            Some(similarity),
            false,
        ));
        self
    }

    /// Declare a nullable foreign key (NULL means "no link").
    pub fn nullable_foreign_key(mut self, cols: &[&str], ref_relation: impl Into<String>) -> Self {
        self.foreign_keys.push((
            cols.iter().map(|s| s.to_string()).collect(),
            ref_relation.into(),
            None,
            true,
        ));
        self
    }

    /// Resolve names to indices and produce the schema.
    pub fn build(self) -> StorageResult<RelationSchema> {
        let mut schema = RelationSchema {
            name: self.name,
            columns: self.columns,
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
        };
        for name in &self.primary_key {
            let idx = schema.require_column(name)?;
            schema.primary_key.push(idx);
        }
        for (cols, ref_relation, similarity, nullable) in self.foreign_keys {
            let mut indices = Vec::with_capacity(cols.len());
            for name in &cols {
                indices.push(schema.require_column(name)?);
            }
            schema.foreign_keys.push(ForeignKey {
                columns: indices,
                ref_relation,
                similarity,
                nullable,
            });
        }
        schema.validate()?;
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_schema() -> RelationSchema {
        RelationSchema::builder("Paper")
            .column("PaperId", ColumnType::Text)
            .column("PaperName", ColumnType::Text)
            .primary_key(&["PaperId"])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_resolves_names() {
        let s = paper_schema();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.primary_key, vec![0]);
        assert_eq!(s.column_index("PaperName"), Some(1));
        assert_eq!(s.primary_key_names(), vec!["PaperId"]);
    }

    #[test]
    fn builder_rejects_unknown_pk_column() {
        let err = RelationSchema::builder("X")
            .column("a", ColumnType::Int)
            .primary_key(&["nope"])
            .build()
            .unwrap_err();
        assert!(matches!(err, StorageError::UnknownColumn { .. }));
    }

    #[test]
    fn builder_rejects_duplicate_columns() {
        let err = RelationSchema::builder("X")
            .column("a", ColumnType::Int)
            .column("a", ColumnType::Text)
            .build()
            .unwrap_err();
        assert!(matches!(err, StorageError::InvalidSchema(_)));
    }

    #[test]
    fn builder_rejects_bad_similarity() {
        let err = RelationSchema::builder("Cites")
            .column("Citing", ColumnType::Text)
            .foreign_key_with_similarity(&["Citing"], "Paper", -1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, StorageError::InvalidSchema(_)));
    }

    #[test]
    fn column_type_accepts() {
        assert!(ColumnType::Int.accepts(&Value::Int(1)));
        assert!(!ColumnType::Int.accepts(&Value::text("x")));
        assert!(
            ColumnType::Float.accepts(&Value::Int(1)),
            "int widens to float"
        );
        assert!(
            ColumnType::Text.accepts(&Value::Null),
            "null always accepted"
        );
        assert!(ColumnType::Bool.accepts(&Value::Bool(false)));
    }

    #[test]
    fn column_type_name_parse_roundtrip() {
        for ty in [
            ColumnType::Int,
            ColumnType::Float,
            ColumnType::Text,
            ColumnType::Bool,
        ] {
            assert_eq!(ColumnType::parse(ty.name()), Some(ty));
        }
        assert_eq!(ColumnType::parse("varchar"), None);
    }

    #[test]
    fn key_of_extracts_pk_values() {
        let s = paper_schema();
        let vals = vec![Value::text("ChakrabartiSD98"), Value::text("Mining...")];
        let key = s.key_of(&vals);
        assert_eq!(key, vec![&Value::text("ChakrabartiSD98")]);
    }

    #[test]
    fn empty_name_rejected() {
        let err = RelationSchema::builder("")
            .column("a", ColumnType::Int)
            .build();
        assert!(err.is_err());
    }
}
