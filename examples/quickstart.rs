//! Quickstart: the paper's Figure 1 database, queried with "soumen
//! sunita", printing the Figure 2 connection tree.
//!
//! ```text
//! cargo run -p banks-examples --example quickstart
//! ```

use banks_core::Banks;
use banks_storage::{ColumnType, Database, RelationSchema, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the bibliography schema of Figure 1(A): Author, Paper,
    //    and the Writes link relation with foreign keys to both.
    let mut db = Database::new("dblp-fragment");
    db.create_relation(
        RelationSchema::builder("Author")
            .column("AuthorId", ColumnType::Text)
            .column("AuthorName", ColumnType::Text)
            .primary_key(&["AuthorId"])
            .build()?,
    )?;
    db.create_relation(
        RelationSchema::builder("Paper")
            .column("PaperId", ColumnType::Text)
            .column("PaperName", ColumnType::Text)
            .primary_key(&["PaperId"])
            .build()?,
    )?;
    db.create_relation(
        RelationSchema::builder("Writes")
            .column("AuthorId", ColumnType::Text)
            .column("PaperId", ColumnType::Text)
            .primary_key(&["AuthorId", "PaperId"])
            .foreign_key(&["AuthorId"], "Author")
            .foreign_key(&["PaperId"], "Paper")
            .build()?,
    )?;

    // 2. Insert the seven tuples of Figure 1(B).
    db.insert(
        "Paper",
        vec![
            Value::text("ChakrabartiSD98"),
            Value::text("Mining Surprising Patterns Using Temporal Description Length"),
        ],
    )?;
    for (id, name) in [
        ("SoumenC", "Soumen Chakrabarti"),
        ("SunitaS", "Sunita Sarawagi"),
        ("ByronD", "Byron Dom"),
    ] {
        db.insert("Author", vec![Value::text(id), Value::text(name)])?;
        db.insert(
            "Writes",
            vec![Value::text(id), Value::text("ChakrabartiSD98")],
        )?;
    }

    // 3. Build BANKS (tokenizes, indexes, and materializes the data graph)
    //    and run the keyword query of Figure 2.
    let banks = Banks::new(db)?;
    for query in ["soumen sunita", "sunita temporal", "soumen sunita byron"] {
        println!("query: {query}");
        let answers = banks.search(query)?;
        for (i, answer) in answers.iter().enumerate() {
            println!("answer {} (relevance {:.3}):", i + 1, answer.relevance);
            for line in banks.render_answer(answer).lines() {
                println!("  {line}");
            }
        }
        println!();
    }
    Ok(())
}
