//! Bring-your-own schema: BANKS on a database that doesn't come from the
//! built-in generators — an org chart with a self-referential manager
//! edge, projects, and assignments — plus bundle persistence.
//!
//! ```text
//! cargo run -p banks-examples --example custom_schema [bundle-dir]
//! ```

use banks_core::{Banks, BanksConfig};
use banks_storage::bundle::{load_bundle, save_bundle};
use banks_storage::{ColumnType, Database, RelationSchema, Value};
use std::path::PathBuf;

fn build_org() -> Result<Database, Box<dyn std::error::Error>> {
    let mut db = Database::new("orgchart");
    db.create_relation(
        RelationSchema::builder("Employee")
            .column("Id", ColumnType::Text)
            .column("Name", ColumnType::Text)
            .nullable_column("Manager", ColumnType::Text)
            .primary_key(&["Id"])
            .nullable_foreign_key(&["Manager"], "Employee")
            .build()?,
    )?;
    db.create_relation(
        RelationSchema::builder("Project")
            .column("Id", ColumnType::Text)
            .column("Title", ColumnType::Text)
            .primary_key(&["Id"])
            .build()?,
    )?;
    db.create_relation(
        RelationSchema::builder("Assignment")
            .column("EmployeeId", ColumnType::Text)
            .column("ProjectId", ColumnType::Text)
            .primary_key(&["EmployeeId", "ProjectId"])
            .foreign_key(&["EmployeeId"], "Employee")
            .foreign_key(&["ProjectId"], "Project")
            .build()?,
    )?;

    // A small org: a director, two leads, four engineers.
    let people: &[(&str, &str, Option<&str>)] = &[
        ("e1", "Dana Director", None),
        ("e2", "Lena Lead", Some("e1")),
        ("e3", "Liam Lead", Some("e1")),
        ("e4", "Eva Engineer", Some("e2")),
        ("e5", "Errol Engineer", Some("e2")),
        ("e6", "Elif Engineer", Some("e3")),
        ("e7", "Edgar Engineer", Some("e3")),
    ];
    for (id, name, manager) in people {
        db.insert(
            "Employee",
            vec![
                Value::text(*id),
                Value::text(*name),
                manager.map(Value::text).unwrap_or(Value::Null),
            ],
        )?;
    }
    for (id, title) in [
        ("p1", "Keyword Search Engine"),
        ("p2", "Browsing Interface Revamp"),
        ("p3", "Graph Storage Compaction"),
    ] {
        db.insert("Project", vec![Value::text(id), Value::text(title)])?;
    }
    for (e, p) in [
        ("e4", "p1"),
        ("e5", "p1"),
        ("e6", "p2"),
        ("e7", "p3"),
        ("e2", "p1"),
        ("e3", "p2"),
        ("e3", "p3"),
    ] {
        db.insert("Assignment", vec![Value::text(e), Value::text(p)])?;
    }
    Ok(db)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = build_org()?;

    // Link relations make poor information nodes, exactly like Writes in
    // the paper's bibliography schema.
    let mut config = BanksConfig::default();
    config.search.excluded_root_relations = vec!["Assignment".into()];
    let banks = Banks::with_config(db, config)?;

    // Who connects Eva and Elif? (Answer: they share no project — the
    // connection runs up the management chain.)
    for query in ["eva elif", "eva errol", "lena keyword", "graph edgar"] {
        println!("== query: {query}");
        let answers = banks.search(query)?;
        match answers.first() {
            Some(best) => print!("{}", banks.render_answer(best)),
            None => println!("(no answers)"),
        }
        println!();
    }

    // Persist the database as a bundle and read it back.
    let dir: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("banks_orgchart_bundle"));
    save_bundle(banks.db(), &dir)?;
    let restored = load_bundle(&dir)?;
    println!(
        "bundle round trip: {} tuples → {} ({} relations) at {}",
        banks.db().total_tuples(),
        restored.total_tuples(),
        restored.relation_count(),
        dir.display()
    );
    Ok(())
}
