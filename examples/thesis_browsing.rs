//! Browsing (§4): a session over the thesis database — the Figure 4 flow
//! (students joined with theses, columns dropped), backward browsing of a
//! primary key, the four templates, and an HTML dump.
//!
//! ```text
//! cargo run -p banks-examples --example thesis_browsing [out.html]
//! ```

use banks_browse::{
    html, ChartKind, ChartSpec, CrosstabSpec, FolderSpec, GroupBySpec, Hyperlink, Measure, Session,
    TemplateRegistry, TemplateSpec,
};
use banks_datagen::thesis::{generate, ThesisConfig};
use banks_storage::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = generate(ThesisConfig::tiny(1))?;
    let db = &dataset.db;

    // -- Figure 4: browse students, join theses, drop columns -----------
    let mut session = Session::open(db, "Student")?;
    let thesis_rel = db.relation_id("Thesis")?;
    session.reverse_join(thesis_rel, 0); // theses by their student FK
    session.drop_column(3); // hide ProgramId
    let view = session.render()?;
    println!("== {} ({} rows) ==", view.title, view.total_rows);
    println!("{}", view.columns.join(" | "));
    for row in view.rows.iter().take(5) {
        let texts: Vec<&str> = row.iter().map(|c| c.text.as_str()).collect();
        println!("{}", texts.join(" | "));
    }
    println!("…page {} of {}\n", view.page + 1, view.page_count);

    // -- backward browsing: who references the CSE department? ----------
    let cse = db
        .relation("Department")?
        .lookup_pk(&[Value::text(&dataset.planted.cse_dept)])
        .expect("planted department");
    println!(
        "== backward browsing menu for {} ==",
        db.describe_tuple(cse)?
    );
    for entry in session.backref_menu(cse) {
        println!(
            "  {} via fk#{} — {} tuples",
            entry.relation_name, entry.fk_index, entry.count
        );
    }
    println!();

    // -- follow a hyperlink chain ----------------------------------------
    let mut nav = Session::open(db, "Thesis")?;
    let first_view = nav.render()?;
    if let Some(link) = first_view.rows[0][2].link.clone() {
        nav.follow(&link)?; // thesis → its student
        let student_view = nav.render()?;
        println!(
            "followed {} → {} ({} row)",
            link.href(),
            student_view.title,
            student_view.total_rows
        );
        nav.back();
        println!("back to {}\n", nav.render()?.title);
    }

    // -- the four templates (§4) -----------------------------------------
    let student_rel = db.relation_id("Student")?;
    let mut registry = TemplateRegistry::new();
    registry.register(
        "students-crosstab",
        TemplateSpec::Crosstab(CrosstabSpec {
            relation: student_rel,
            row_attr: 2, // DeptId
            col_attr: 3, // ProgramId
            measure: Measure::Count,
        }),
    );
    registry.register(
        "students-by-dept-program",
        TemplateSpec::GroupBy(GroupBySpec {
            relation: student_rel,
            levels: vec![2, 3],
        }),
    );
    registry.register(
        "students-folders",
        TemplateSpec::Folder(FolderSpec {
            relation: student_rel,
            levels: vec![2],
            max_leaves: 3,
        }),
    );
    registry.register(
        "students-chart",
        TemplateSpec::Chart(ChartSpec {
            relation: student_rel,
            label_attr: 2,
            measure: Measure::Count,
            kind: ChartKind::Bar,
        }),
    );
    println!("registered templates: {:?}\n", registry.names());

    // Resolve one through a hyperlink (templates are composable: links may
    // point at other templates).
    let link = Hyperlink::Template("students-chart".into());
    let spec = registry.resolve(&link).expect("registered");
    let output = banks_browse::templates::evaluate(db, spec)?;

    // -- HTML dump ---------------------------------------------------------
    let mut page = String::from("<html><body><h1>BANKS browsing demo</h1>\n");
    page.push_str(&html::render_view(&view));
    if let banks_browse::TemplateOutput::Chart(chart) = &output {
        page.push_str(&html::render_chart(chart));
    }
    for name in registry.names() {
        match registry.get(name).unwrap() {
            TemplateSpec::Crosstab(s) => {
                let ct = banks_browse::templates::crosstab::evaluate(db, s)?;
                page.push_str(&format!("<h2>{name}</h2>"));
                page.push_str(&html::render_crosstab(&ct));
            }
            TemplateSpec::Folder(s) => {
                let tree = banks_browse::templates::folder::evaluate(db, s)?;
                page.push_str(&format!("<h2>{name}</h2><ul>"));
                page.push_str(&html::render_folder(&tree));
                page.push_str("</ul>");
            }
            _ => {}
        }
    }
    page.push_str("</body></html>\n");

    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/banks_browse_demo.html".to_string());
    std::fs::write(&out_path, &page)?;
    println!("wrote {} bytes of HTML to {out_path}", page.len());
    Ok(())
}
