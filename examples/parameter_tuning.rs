//! Parameter tuning: a compact rerun of the paper's §5.3 study — sweep λ
//! and the scaling/combination options over the seven-query workload, and
//! inspect how the output-heap size affects rank quality (§3's heuristic).
//!
//! ```text
//! cargo run --release -p banks-examples --example parameter_tuning [seed]
//! ```

use banks_datagen::dblp::{generate, DblpConfig};
use banks_eval::fig5::{cell, run_fig5, run_heap_sweep, LAMBDAS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let dataset = generate(DblpConfig::tiny(seed))?;
    println!(
        "corpus: {} tuples / {} links (seed {seed})\n",
        dataset.db.total_tuples(),
        dataset.db.link_count()
    );

    let report = run_fig5(&dataset, true);
    println!("average scaled error (0 = ideal ranking, 100 = worst):\n");
    println!("  λ      edges linear   edges log-scaled");
    for &lambda in &LAMBDAS {
        let lin = cell(&report, lambda, false).unwrap().avg_scaled_error;
        let log = cell(&report, lambda, true).unwrap().avg_scaled_error;
        println!("  {lambda:<6} {lin:>10.2} {log:>16.2}");
    }
    println!();
    println!(
        "combination mode max Δ: {:.2} — the paper found the mode has almost no impact",
        report.combination_mode_max_delta
    );
    println!(
        "node-log scaling max Δ: {:.2} — the paper found the same rankings",
        report.node_log_max_delta
    );

    println!("\noutput-heap size vs rank quality (§3 heuristic):");
    for row in run_heap_sweep(&dataset, &[1, 5, 10, 30, 100]) {
        println!(
            "  heap {:>4} → error {:>6.2}",
            row.heap_size, row.avg_scaled_error
        );
    }

    let best = cell(&report, 0.2, true).unwrap();
    println!(
        "\nconclusion: λ=0.2 with log-scaled edges scores {:.2} — \
         the paper's recommended setting",
        best.avg_scaled_error
    );
    Ok(())
}
