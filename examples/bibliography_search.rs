//! Bibliography search: the paper's primary scenario on the synthetic
//! DBLP corpus — keyword search, metadata matching, qualified and
//! approximate queries, answer summarization, and the forward-search
//! strategy for metadata-heavy queries.
//!
//! ```text
//! cargo run -p banks-examples --example bibliography_search [seed]
//! ```

use banks_core::{Banks, BanksConfig, SearchStrategy};
use banks_datagen::dblp::{generate, DblpConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    println!("generating synthetic DBLP (seed {seed})…");
    let dataset = generate(DblpConfig::tiny(seed))?;
    println!(
        "  {} tuples, {} foreign-key links\n",
        dataset.db.total_tuples(),
        dataset.db.link_count()
    );

    // The paper's §2.1 root restriction: link relations are not meaningful
    // information nodes.
    let mut config = BanksConfig::default();
    config.search.excluded_root_relations = vec!["Writes".into(), "Cites".into()];
    // Enable the §7 extensions: approximate matching.
    config.matching.approximate = true;
    let banks = Banks::with_config(dataset.db.clone(), config)?;

    // -- §5.1-style keyword queries ------------------------------------
    for query in ["mohan", "transaction", "soumen sunita", "seltzer sunita"] {
        println!("== query: {query}");
        let answers = banks.search(query)?;
        for answer in answers.iter().take(2) {
            println!("relevance {:.3}", answer.relevance);
            for line in banks.render_answer(answer).lines() {
                println!("  {line}");
            }
        }
        println!();
    }

    // -- attribute-qualified query (§2.3 extension) ---------------------
    println!("== qualified query: AuthorName:sunita");
    for answer in banks.search("AuthorName:sunita")? {
        print!("{}", banks.render_answer(&answer));
    }
    println!();

    // -- numeric approximation (§7): papers around 1988 -----------------
    println!("== approx query: mining approx(1988)");
    for answer in banks.search("mining approx(1988)")?.iter().take(3) {
        print!("{}", banks.render_answer(answer));
    }
    println!();

    // -- approximate token matching (edit distance 1) -------------------
    println!("== fuzzy query: sunitha temporal   (note the typo)");
    for answer in banks.search("sunitha temporal")?.iter().take(2) {
        print!("{}", banks.render_answer(answer));
    }
    println!();

    // -- answer summarization (§7): group by tree shape -----------------
    println!("== summarization of: soumen sunita");
    let answers = banks.search("soumen sunita")?;
    for group in banks.summarize(&answers) {
        println!(
            "shape {} — {} answers, best relevance {:.3}",
            group.label,
            group.answers.len(),
            group.best_relevance
        );
    }
    println!();

    // -- forward search (§7) on a metadata-heavy query ------------------
    println!("== forward search: author sunita");
    let outcome = banks.search_with("author sunita", SearchStrategy::Forward, banks.config())?;
    println!(
        "{} answers, {} pops, {} iterators (backward would start one per matching node)",
        outcome.answers.len(),
        outcome.stats.pops,
        outcome.stats.iterators
    );
    if let Some(best) = outcome.answers.first() {
        print!("{}", banks.render_answer(best));
    }
    Ok(())
}
